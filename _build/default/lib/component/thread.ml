module Q = Rational

type action =
  | Task of {
      name : string;
      wcet : Q.t;
      bcet : Q.t;
      blocking : Q.t option;
      priority : int option;
    }
  | Call of { method_name : string }

type activation =
  | Periodic of { period : Q.t; deadline : Q.t; jitter : Q.t }
  | Realizes of { method_name : string; deadline : Q.t option }

type t = {
  name : string;
  activation : activation;
  priority : int;
  body : action list;
}

let check_action thread = function
  | Call { method_name } ->
      if String.length method_name = 0 then
        invalid_arg ("Thread.make: " ^ thread ^ ": empty call target")
  | Task { name; wcet; bcet; blocking; priority } ->
      if String.length name = 0 then
        invalid_arg ("Thread.make: " ^ thread ^ ": empty task name");
      if Q.(wcet <= zero) then
        invalid_arg ("Thread.make: " ^ thread ^ "." ^ name ^ ": wcet must be > 0");
      if Q.(bcet < zero) || Q.(bcet > wcet) then
        invalid_arg
          ("Thread.make: " ^ thread ^ "." ^ name ^ ": need 0 <= bcet <= wcet");
      Option.iter
        (fun p ->
          if p <= 0 then
            invalid_arg
              ("Thread.make: " ^ thread ^ "." ^ name ^ ": priority must be > 0"))
        priority;
      Option.iter
        (fun b ->
          if Q.(b < zero) then
            invalid_arg
              ("Thread.make: " ^ thread ^ "." ^ name ^ ": blocking must be >= 0"))
        blocking

let make ~name ~activation ~priority body =
  if String.length name = 0 then invalid_arg "Thread.make: empty name";
  if priority <= 0 then
    invalid_arg ("Thread.make: " ^ name ^ ": priority must be > 0");
  (match activation with
  | Periodic { period; deadline; jitter } ->
      if Q.(period <= zero) then
        invalid_arg ("Thread.make: " ^ name ^ ": period must be > 0");
      if Q.(deadline <= zero) then
        invalid_arg ("Thread.make: " ^ name ^ ": deadline must be > 0");
      if Q.(jitter < zero) then
        invalid_arg ("Thread.make: " ^ name ^ ": jitter must be >= 0")
  | Realizes { method_name; deadline } ->
      if String.length method_name = 0 then
        invalid_arg ("Thread.make: " ^ name ^ ": empty realized method");
      Option.iter
        (fun d ->
          if Q.(d <= zero) then
            invalid_arg ("Thread.make: " ^ name ^ ": deadline must be > 0"))
        deadline);
  if body = [] then invalid_arg ("Thread.make: " ^ name ^ ": empty body");
  List.iter (check_action name) body;
  { name; activation; priority; body }

let is_periodic t =
  match t.activation with Periodic _ -> true | Realizes _ -> false

let realized_method t =
  match t.activation with
  | Periodic _ -> None
  | Realizes { method_name; _ } -> Some method_name

let called_methods t =
  List.filter_map
    (function Call { method_name } -> Some method_name | Task _ -> None)
    t.body

let demand t =
  List.fold_left
    (fun acc -> function Task { wcet; _ } -> Q.(acc + wcet) | Call _ -> acc)
    Q.zero t.body

let pp_action ppf = function
  | Task { name; wcet; bcet; blocking = _; priority = _ } ->
      Format.fprintf ppf "%s (C=%a, Cb=%a)" name Q.pp wcet Q.pp bcet
  | Call { method_name } -> Format.fprintf ppf "%s()" method_name

let pp ppf t =
  let pp_activation ppf = function
    | Periodic { period; deadline; jitter = _ } ->
        Format.fprintf ppf "periodic(T=%a, D=%a)" Q.pp period Q.pp deadline
    | Realizes { method_name; deadline = _ } ->
        Format.fprintf ppf "realizes %s()" method_name
  in
  Format.fprintf ppf "@[<hov 2>%s : %a, priority=%d {@ %a }@]" t.name
    pp_activation t.activation t.priority
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_action)
    t.body
