(** Component threads (Section 2.1).

    A thread is implemented by a sequence of {e tasks} (pieces of code the
    component implements directly) and synchronous {e method calls}
    through the required interface.  Threads are activated either
    periodically (time-triggered) or by an invocation of a provided
    method they realize (event-triggered). *)

type action =
  | Task of {
      name : string;
      wcet : Rational.t;
      bcet : Rational.t;
      blocking : Rational.t option;
          (** Worst-case blocking suffered from lower-priority
              non-preemptable sections (B{_a,b} in the analysis);
              defaults to none. *)
      priority : int option;
          (** Overrides the thread priority for this task only.  Tasks
              normally inherit the priority of their thread, but raising
              the priority of a section is a common implementation device
              (the paper's own example runs [compute] of
              [Integrator.Thread2] above the thread's base priority). *)
    }  (** Local code with worst- and best-case execution demand, in
          cycles. *)
  | Call of { method_name : string }
      (** Synchronous invocation of a required-interface method: the
          thread suspends until the remote method completes. *)

type activation =
  | Periodic of {
      period : Rational.t;
      deadline : Rational.t;
      jitter : Rational.t;
          (** maximum release jitter — a time-triggered thread driven by
              a sporadic source (e.g. a sensor interrupt rounded to the
              next tick) may be activated up to this much late *)
    }
  | Realizes of { method_name : string; deadline : Rational.t option }
      (** Event-triggered by calls to the named provided method.  The
          period is the method's MIT; the deadline defaults to it. *)

type t = {
  name : string;
  activation : activation;
  priority : int;  (** local to the component; greater is higher *)
  body : action list;
}

val make :
  name:string -> activation:activation -> priority:int -> action list -> t
(** @raise Invalid_argument on an empty name, non-positive priority,
    non-positive period/deadline, an empty body, or a task whose demand
    violates [0 <= bcet <= wcet] or [wcet > 0]. *)

val is_periodic : t -> bool

val realized_method : t -> string option
(** The provided method this thread realizes, if event-triggered. *)

val called_methods : t -> string list
(** Required methods invoked by the body, in order, with duplicates. *)

val demand : t -> Rational.t
(** Total worst-case cycles of the local tasks of the body. *)

val pp : Format.formatter -> t -> unit
