(** Component classes (Section 2.1).

    A component consists of a provided interface, a required interface,
    and an implementation: a set of threads plus a local scheduler.  The
    paper (and therefore the analysis) fixes the local scheduler to
    preemptive fixed priorities; the constructor keeps the scheduler
    explicit so the model can be extended. *)

type scheduler = Fixed_priority

type t = private {
  name : string;
  provided : Method_sig.t list;
  required : Method_sig.t list;
  scheduler : scheduler;
  threads : Thread.t list;
}

val make :
  ?scheduler:scheduler ->
  name:string ->
  provided:Method_sig.t list ->
  required:Method_sig.t list ->
  Thread.t list ->
  t
(** Builds a component class and checks its internal consistency:
    non-empty unique names for methods and threads, every provided method
    realized by exactly one thread, every event-triggered thread bound to
    an existing provided method, and every called method present in the
    required interface.
    @raise Invalid_argument when a check fails, with a message naming the
    offending element. *)

val find_provided : t -> string -> Method_sig.t option

val find_required : t -> string -> Method_sig.t option

val realizer : t -> string -> Thread.t option
(** The thread realizing the given provided method. *)

val pp : Format.formatter -> t -> unit
