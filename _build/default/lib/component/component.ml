(** The component model of Section 2: interfaces with minimum
    interarrival times, threads, component classes, and system assemblies
    with RPC bindings and platform allocation. *)

module Method_sig = Method_sig
module Thread = Thread
module Comp = Comp
module Assembly = Assembly
