lib/core/paper_example.mli: Analysis Component Transaction
