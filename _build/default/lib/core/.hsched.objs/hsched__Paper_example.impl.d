lib/core/paper_example.ml: Analysis Component List Platform Rational Transaction
