lib/core/hsched.ml: Analysis Component Paper_example Platform Rational Transaction
