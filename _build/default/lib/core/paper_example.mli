(** The paper's running example (Sections 2.2 and 4): the stereoscopic
    sensor-fusion subsystem.

    Two [SensorReading] instances and one [SensorIntegration] instance
    run on three abstract platforms carved out of one physical node
    (Table 2); the derivation produces the four transactions of Figure 5
    with the parameters of Table 1. *)

val assembly : unit -> Component.Assembly.t

val system : unit -> Transaction.System.t
(** Derived transactions; raises only if the example itself is broken. *)

val model : unit -> Analysis.Model.t

val report : ?params:Analysis.Params.t -> unit -> Analysis.Report.t
(** Runs the holistic analysis (defaults to the paper's reduced
    variant). *)

val paper_task_names : (string * string) list
(** Mapping from the paper's labels (["tau_1,1"] …) to the derived task
    names, in Table 1 row order. *)

val paper_location : string -> int * int
(** Transaction and task index of a paper label in {!system}'s order.
    @raise Not_found for unknown labels. *)
