module Q = Rational

type t = {
  name : string;
  period : Q.t;
  deadline : Q.t;
  release_jitter : Q.t;
  tasks : Task.t array;
}

let make ?(release_jitter = Q.zero) ~name ~period ~deadline tasks =
  if String.length name = 0 then invalid_arg "Txn.make: empty name";
  if Q.(period <= zero) then
    invalid_arg ("Txn.make: " ^ name ^ ": period must be > 0");
  if Q.(deadline <= zero) then
    invalid_arg ("Txn.make: " ^ name ^ ": deadline must be > 0");
  if Q.(release_jitter < zero) then
    invalid_arg ("Txn.make: " ^ name ^ ": release jitter must be >= 0");
  if tasks = [] then invalid_arg ("Txn.make: " ^ name ^ ": no tasks");
  let names = List.map (fun (t : Task.t) -> t.Task.name) tasks in
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Txn.make: " ^ name ^ ": duplicate task " ^ a)
        else dup rest
    | [] | [ _ ] -> ()
  in
  dup sorted;
  { name; period; deadline; release_jitter; tasks = Array.of_list tasks }

let length t = Array.length t.tasks

let task t j =
  if j < 0 || j >= Array.length t.tasks then
    invalid_arg (Printf.sprintf "Txn.task: %s: index %d out of range" t.name j)
  else t.tasks.(j)

let demand_on t resource =
  Array.fold_left
    (fun acc (tk : Task.t) ->
      if tk.Task.resource = resource then Q.(acc + tk.Task.wcet) else acc)
    Q.zero t.tasks

let utilization_on t resource = Q.(demand_on t resource / t.period)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s : T=%a, D=%a@ %a@]" t.name Q.pp t.period Q.pp
    t.deadline
    (Format.pp_print_list Task.pp)
    (Array.to_list t.tasks)
