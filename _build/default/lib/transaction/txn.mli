(** Real-time transactions (Section 2.4).

    A transaction Γ{_i} is a precedence-ordered sequence of tasks released
    every [period]; the last task must complete within [deadline] of the
    transaction's activation.  Tasks of one transaction may execute on
    different abstract platforms — that is the whole point of the model. *)

type t = private {
  name : string;
  period : Rational.t;
  deadline : Rational.t;
  release_jitter : Rational.t;
      (** maximum delay of the transaction's activation after its nominal
          release — sporadic arrival jitter of the first task (J{_i,1}) *)
  tasks : Task.t array;
}

val make :
  ?release_jitter:Rational.t ->
  name:string ->
  period:Rational.t ->
  deadline:Rational.t ->
  Task.t list ->
  t
(** @raise Invalid_argument on an empty task list, non-positive period or
    deadline, negative release jitter, or duplicate task names within the
    transaction.  [release_jitter] defaults to zero. *)

val length : t -> int

val task : t -> int -> Task.t
(** 0-based.  @raise Invalid_argument when out of range. *)

val demand_on : t -> int -> Rational.t
(** Total worst-case cycles the transaction places on the given resource
    per activation. *)

val utilization_on : t -> int -> Rational.t
(** [demand_on / period]. *)

val pp : Format.formatter -> t -> unit
