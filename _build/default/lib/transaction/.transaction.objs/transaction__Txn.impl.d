lib/transaction/txn.ml: Array Format List Printf Rational String Task
