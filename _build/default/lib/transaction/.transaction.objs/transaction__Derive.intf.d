lib/transaction/derive.mli: Component System
