lib/transaction/transaction.ml: Derive System Task Txn
