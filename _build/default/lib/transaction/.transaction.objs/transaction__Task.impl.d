lib/transaction/task.ml: Format Option Rational String
