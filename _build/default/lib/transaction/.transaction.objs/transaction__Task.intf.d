lib/transaction/task.mli: Format Rational
