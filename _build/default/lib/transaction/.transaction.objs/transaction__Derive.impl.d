lib/transaction/derive.ml: Component Hashtbl List Option Platform Printf Rational String System Task Txn
