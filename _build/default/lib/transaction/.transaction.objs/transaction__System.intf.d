lib/transaction/system.mli: Format Platform Rational Txn
