lib/transaction/system.ml: Array Format List Platform Rational String Task Txn
