lib/transaction/txn.mli: Format Rational Task
