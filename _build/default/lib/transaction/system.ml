module Q = Rational
module Resource = Platform.Resource

type t = { resources : Resource.t array; transactions : Txn.t array }

let make ~resources transactions =
  let t =
    {
      resources = Array.of_list resources;
      transactions = Array.of_list transactions;
    }
  in
  let check_unique what names =
    let sorted = List.sort String.compare names in
    let rec dup = function
      | a :: (b :: _ as rest) ->
          if String.equal a b then
            invalid_arg ("System.make: duplicate " ^ what ^ " " ^ a)
          else dup rest
      | [] | [ _ ] -> ()
    in
    dup sorted
  in
  check_unique "resource"
    (List.map (fun (r : Resource.t) -> r.Resource.name) resources);
  check_unique "transaction" (List.map (fun (x : Txn.t) -> x.Txn.name) transactions);
  Array.iter
    (fun (x : Txn.t) ->
      Array.iter
        (fun (tk : Task.t) ->
          if tk.Task.resource >= Array.length t.resources then
            invalid_arg
              ("System.make: task " ^ tk.Task.name ^ " of " ^ x.Txn.name
             ^ " references resource index "
              ^ string_of_int tk.Task.resource
              ^ " out of range"))
        x.Txn.tasks)
    t.transactions;
  t

let n_resources t = Array.length t.resources

let n_transactions t = Array.length t.transactions

let utilization t r =
  Array.fold_left
    (fun acc x -> Q.(acc + Txn.utilization_on x r))
    Q.zero t.transactions

let over_utilized t =
  let out = ref [] in
  Array.iteri
    (fun r (res : Resource.t) ->
      let u = utilization t r in
      let alpha = res.Resource.bound.Platform.Linear_bound.alpha in
      if Q.(u > alpha) then out := (r, u, alpha) :: !out)
    t.resources;
  List.rev !out

let tasks_on t r =
  let out = ref [] in
  Array.iteri
    (fun i (x : Txn.t) ->
      Array.iteri
        (fun j (tk : Task.t) ->
          if tk.Task.resource = r then out := (i, j) :: !out)
        x.Txn.tasks)
    t.transactions;
  List.rev !out

let find_transaction t name =
  let found = ref None in
  Array.iteri
    (fun i (x : Txn.t) ->
      if !found = None && String.equal x.Txn.name name then found := Some i)
    t.transactions;
  !found

let hyperperiod t =
  Array.fold_left
    (fun acc (x : Txn.t) -> Q.lcm_q acc x.Txn.period)
    Q.one t.transactions

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun r (res : Resource.t) ->
      let members =
        tasks_on t r
        |> List.map (fun (i, j) -> (Txn.task t.transactions.(i) j).Task.name)
      in
      Format.fprintf ppf "Π%d = %a  util=%a  {%s}@ " r Resource.pp res Q.pp
        (utilization t r) (String.concat ", " members))
    t.resources;
  Array.iter (fun x -> Format.fprintf ppf "%a@ " Txn.pp x) t.transactions;
  Format.fprintf ppf "@]"
