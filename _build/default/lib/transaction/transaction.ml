(** Real-time transactions and their derivation from component
    assemblies (Section 2.4 of the paper). *)

module Task = Task
module Txn = Txn
module System = System
module Derive = Derive
