(** A complete analyzable system: the abstract platforms and the set of
    transactions mapped onto them (Figure 5 of the paper). *)

type t = private {
  resources : Platform.Resource.t array;
  transactions : Txn.t array;
}

val make : resources:Platform.Resource.t list -> Txn.t list -> t
(** @raise Invalid_argument on duplicate transaction or resource names, or
    when a task references a resource index out of range. *)

val n_resources : t -> int

val n_transactions : t -> int

val utilization : t -> int -> Rational.t
(** Total utilization placed on the given resource by all transactions. *)

val over_utilized : t -> (int * Rational.t * Rational.t) list
(** Resources whose demand exceeds their rate: [(index, utilization,
    alpha)].  Such resources make every response-time recurrence diverge;
    the analysis reports the affected tasks as unbounded. *)

val tasks_on : t -> int -> (int * int) list
(** [(transaction index, task index)] pairs of the tasks allocated to the
    given resource. *)

val find_transaction : t -> string -> int option

val hyperperiod : t -> Rational.t
(** Least common multiple of the transaction periods — a natural
    simulation horizon unit. *)

val pp : Format.formatter -> t -> unit
(** Figure-5-style rendering: each platform with its tasks, each
    transaction with its task chain. *)
