module Q = Rational

type source =
  | Code of { instance : string; thread : string; action : string }
  | Message of {
      caller : string;
      callee : string;
      method_name : string;
      direction : [ `Request | `Reply ];
    }
  | Synthetic of string

type t = {
  name : string;
  wcet : Q.t;
  bcet : Q.t;
  resource : int;
  priority : int;
  blocking : Q.t;
  source : source;
}

let make ?source ?(blocking = Q.zero) ~name ~wcet ~bcet ~resource ~priority () =
  if String.length name = 0 then invalid_arg "Task.make: empty name";
  if Q.(wcet <= zero) then
    invalid_arg ("Task.make: " ^ name ^ ": wcet must be > 0");
  if Q.(bcet < zero) || Q.(bcet > wcet) then
    invalid_arg ("Task.make: " ^ name ^ ": need 0 <= bcet <= wcet");
  if resource < 0 then
    invalid_arg ("Task.make: " ^ name ^ ": negative resource index");
  if priority <= 0 then
    invalid_arg ("Task.make: " ^ name ^ ": priority must be > 0");
  if Q.(blocking < zero) then
    invalid_arg ("Task.make: " ^ name ^ ": blocking must be >= 0");
  let source = Option.value source ~default:(Synthetic name) in
  { name; wcet; bcet; resource; priority; blocking; source }

let equal a b =
  String.equal a.name b.name && Q.equal a.wcet b.wcet && Q.equal a.bcet b.bcet
  && a.resource = b.resource && a.priority = b.priority

let pp ppf t =
  Format.fprintf ppf "%s (C=%a, Cb=%a, Π%d, p=%d)" t.name Q.pp t.wcet Q.pp
    t.bcet t.resource t.priority
