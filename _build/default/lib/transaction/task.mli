(** Tasks of a real-time transaction (Section 2.4).

    A task τ{_i,j} carries a worst- and best-case execution demand in
    cycles, the index of the abstract platform it is allocated to (the
    mapping variable s{_i,j}), and a priority (greater is higher, local to
    the platform).  Offsets, jitters and response times are {e analysis}
    state, not model state; they live in {!Analysis}. *)

type source =
  | Code of { instance : string; thread : string; action : string }
      (** A piece of component code. *)
  | Message of {
      caller : string;
      callee : string;
      method_name : string;
      direction : [ `Request | `Reply ];
    }  (** An RPC message scheduled on a network platform. *)
  | Synthetic of string  (** Generated workloads and hand-built systems. *)

type t = private {
  name : string;
  wcet : Rational.t;
  bcet : Rational.t;
  resource : int;
  priority : int;
  blocking : Rational.t;
      (** worst-case blocking B{_a,b} from lower-priority
          non-preemptable sections (Eq. 13 carries it; zero when the
          component uses no such sections) *)
  source : source;
}

val make :
  ?source:source ->
  ?blocking:Rational.t ->
  name:string ->
  wcet:Rational.t ->
  bcet:Rational.t ->
  resource:int ->
  priority:int ->
  unit ->
  t
(** @raise Invalid_argument unless [0 <= bcet <= wcet], [wcet > 0],
    [resource >= 0], [priority > 0] and [blocking >= 0].  [source]
    defaults to [Synthetic name], [blocking] to zero. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
