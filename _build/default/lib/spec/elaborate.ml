module Q = Rational
module LB = Platform.Linear_bound
module Resource = Platform.Resource
module M = Component.Method_sig
module Th = Component.Thread
module Comp = Component.Comp
module A = Component.Assembly

let rec supply_of = function
  | Ast.S_nested { inner; outer } ->
      Platform.Supply.Nested { inner = supply_of inner; outer = supply_of outer }
  | Ast.S_full -> Platform.Supply.Full
  | Ast.S_server { budget; period } ->
      Platform.Supply.Periodic_server { budget; period }
  | Ast.S_slots { frame; slots } -> Platform.Supply.Static_slots { frame; slots }
  | Ast.S_pfair { weight } -> Platform.Supply.Pfair { weight }
  | Ast.S_bound { alpha; delta; beta } ->
      Platform.Supply.Bounded_delay (LB.make ~alpha ~delta ~beta)

let resource_of (p : Ast.platform_decl) =
  let kind = if p.Ast.p_network then Resource.Network else Resource.Cpu in
  Resource.of_supply ~kind ?host:p.Ast.p_host ~name:p.Ast.p_name
    (supply_of p.Ast.p_supply)

let action_of = function
  | Ast.A_call m -> Th.Call { method_name = m }
  | Ast.A_task { t_name; wcet; bcet; blocking; prio } ->
      Th.Task
        {
          name = t_name;
          wcet;
          bcet = Option.value bcet ~default:wcet;
          blocking;
          priority = prio;
        }

let thread_of (th : Ast.thread_decl) =
  let activation =
    match th.Ast.th_act with
    | Ast.Act_periodic { period; deadline; jitter } ->
        Th.Periodic
          {
            period;
            deadline = Option.value deadline ~default:period;
            jitter = Option.value jitter ~default:Q.zero;
          }
    | Ast.Act_realizes { meth; deadline } ->
        Th.Realizes { method_name = meth; deadline }
  in
  Th.make ~name:th.Ast.th_name ~activation ~priority:th.Ast.th_prio
    (List.map action_of th.Ast.th_body)

let comp_of (c : Ast.component_decl) =
  Comp.make ~name:c.Ast.c_name
    ~provided:
      (List.map (fun (m : Ast.method_decl) -> M.make ~name:m.Ast.m_name ~mit:m.Ast.m_mit) c.Ast.c_provided)
    ~required:
      (List.map (fun (m : Ast.method_decl) -> M.make ~name:m.Ast.m_name ~mit:m.Ast.m_mit) c.Ast.c_required)
    (List.map thread_of c.Ast.c_threads)

let binding_of (b : Ast.binding_decl) =
  {
    A.caller = b.Ast.b_caller;
    required = b.Ast.b_required;
    callee = b.Ast.b_callee;
    provided = b.Ast.b_provided;
    via =
      Option.map
        (fun (l : Ast.link_decl) ->
          {
            A.network = l.Ast.l_network;
            priority = l.Ast.l_prio;
            request = l.Ast.l_request;
            reply = l.Ast.l_reply;
          })
        b.Ast.b_link;
  }

let assembly items =
  try
    let classes = ref [] and resources = ref [] in
    let instances = ref [] and bindings = ref [] and allocation = ref [] in
    List.iter
      (fun item ->
        match item with
        | Ast.I_platform p -> resources := resource_of p :: !resources
        | Ast.I_component c -> classes := comp_of c :: !classes
        | Ast.I_instance i ->
            instances := { A.iname = i.Ast.i_name; cls = i.Ast.i_class } :: !instances;
            allocation := (i.Ast.i_name, i.Ast.i_platform) :: !allocation
        | Ast.I_bind b -> bindings := binding_of b :: !bindings)
      items;
    Ok
      (A.make ~classes:(List.rev !classes) ~resources:(List.rev !resources)
         ~instances:(List.rev !instances) ~bindings:(List.rev !bindings)
         ~allocation:(List.rev !allocation))
  with Invalid_argument msg -> Error msg
