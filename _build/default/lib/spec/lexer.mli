(** Tokeniser for the [.hsc] language. *)

type token =
  | IDENT of string
  | NUMBER of Rational.t
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | EQUALS
  | ARROW
  | DOT
  | EOF

type located = { token : token; line : int; col : int }

val tokenize : string -> (located list, string) result
(** Comments run from ["//"] to end of line.  Numbers are integers,
    decimals ([0.8]) or fractions ([2/5]), optionally negative.  The
    error message carries the line and column of the offending
    character. *)

val describe : token -> string
