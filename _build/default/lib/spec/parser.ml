module Q = Rational
open Lexer

exception Parse_error of string

type state = { mutable tokens : located list }

let peek st =
  match st.tokens with
  | [] -> { token = EOF; line = 0; col = 0 }
  | t :: _ -> t

let fail_at (t : located) msg =
  raise
    (Parse_error
       (Printf.sprintf "line %d, column %d: %s, found %s" t.line t.col msg
          (describe t.token)))

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st want msg =
  let t = next st in
  if t.token <> want then fail_at t msg

let ident st =
  let t = next st in
  match t.token with IDENT s -> s | _ -> fail_at t "expected an identifier"

let keyword st kw =
  let t = next st in
  match t.token with
  | IDENT s when String.equal s kw -> ()
  | _ -> fail_at t (Printf.sprintf "expected '%s'" kw)

let number st =
  let t = next st in
  match t.token with NUMBER q -> q | _ -> fail_at t "expected a number"

let integer st =
  let t = next st in
  match t.token with
  | NUMBER q when Q.is_integer q -> Q.floor q
  | _ -> fail_at t "expected an integer"

let accept_kw st kw =
  match (peek st).token with
  | IDENT s when String.equal s kw ->
      advance st;
      true
  | _ -> false

let accept st tok =
  if (peek st).token = tok then begin
    advance st;
    true
  end
  else false

(* "( key = NUM, key2 = NUM, ... )": keyword arguments in any order,
   the first being mandatory. *)
let keyword_args st ~mandatory ~optional =
  expect st LPAREN "expected '('";
  let seen = Hashtbl.create 4 in
  let parse_one () =
    let t = next st in
    match t.token with
    | IDENT key when List.mem key (mandatory :: optional) ->
        if Hashtbl.mem seen key then
          fail_at t (Printf.sprintf "duplicate argument '%s'" key);
        expect st EQUALS "expected '='";
        Hashtbl.replace seen key (number st)
    | _ ->
        fail_at t
          (Printf.sprintf "expected one of: %s"
             (String.concat ", " (mandatory :: optional)))
  in
  parse_one ();
  while accept st COMMA do
    parse_one ()
  done;
  expect st RPAREN "expected ')'";
  if not (Hashtbl.mem seen mandatory) then
    raise (Parse_error (Printf.sprintf "missing argument '%s'" mandatory));
  fun key -> Hashtbl.find_opt seen key

(* "( key = NUM [, key2 = NUM] )" with the second field optional. *)
let pair_args st ~first ~second =
  expect st LPAREN "expected '('";
  keyword st first;
  expect st EQUALS "expected '='";
  let a = number st in
  let b =
    if accept st COMMA then begin
      keyword st second;
      expect st EQUALS "expected '='";
      Some (number st)
    end
    else None
  in
  expect st RPAREN "expected ')'";
  (a, b)

(* one supply mechanism: server(...), slots(...), pfair(...), full, or
   bounded(alpha = ..[, delta = ..][, beta = ..]) *)
let supply_atom st =
  let t = peek st in
  match t.token with
  | IDENT "full" ->
      advance st;
      Ast.S_full
  | IDENT "server" ->
      advance st;
      let budget, period = pair_args st ~first:"budget" ~second:"period" in
      let period =
        match period with
        | Some p -> p
        | None -> raise (Parse_error "server needs a period")
      in
      Ast.S_server { budget; period }
  | IDENT "pfair" ->
      advance st;
      expect st LPAREN "expected '('";
      keyword st "weight";
      expect st EQUALS "expected '='";
      let weight = number st in
      expect st RPAREN "expected ')'";
      Ast.S_pfair { weight }
  | IDENT "bounded" ->
      advance st;
      let args =
        keyword_args st ~mandatory:"alpha" ~optional:[ "delta"; "beta" ]
      in
      Ast.S_bound
        {
          alpha = Option.get (args "alpha");
          delta = Option.value (args "delta") ~default:Q.zero;
          beta = Option.value (args "beta") ~default:Q.zero;
        }
  | IDENT "slots" ->
      advance st;
      expect st LPAREN "expected '('";
      keyword st "frame";
      expect st EQUALS "expected '='";
      let frame = number st in
      expect st RPAREN "expected ')'";
      let slots = ref [] in
      while (peek st).token = LBRACKET do
        advance st;
        let s = number st in
        expect st COMMA "expected ','";
        let l = number st in
        expect st RBRACKET "expected ']'";
        slots := (s, l) :: !slots
      done;
      Ast.S_slots { frame; slots = List.rev !slots }
  | _ -> fail_at t "expected a supply model"

(* atoms chained by 'within', right associative:
   a within b within c  =  a within (b within c) *)
let rec supply_expr st =
  let inner = supply_atom st in
  if accept_kw st "within" then Ast.S_nested { inner; outer = supply_expr st }
  else inner

let platform_decl st =
  let p_name = ident st in
  let p_network = accept_kw st "network" in
  expect st LBRACE "expected '{'";
  let host = ref None in
  let supply = ref None in
  let set_supply s =
    match !supply with
    | None -> supply := Some s
    | Some _ -> raise (Parse_error ("platform " ^ p_name ^ ": two supply models"))
  in
  let alpha = ref None and delta = ref None and beta = ref None in
  let rec body () =
    if accept st RBRACE then ()
    else begin
      let t = peek st in
      (match t.token with
      | IDENT "host" ->
          advance st;
          expect st EQUALS "expected '='";
          let v = next st in
          (match v.token with
          | STRING s -> host := Some s
          | _ -> fail_at v "expected a string")
      | IDENT "alpha" ->
          advance st;
          expect st EQUALS "expected '='";
          alpha := Some (number st)
      | IDENT "delta" ->
          advance st;
          expect st EQUALS "expected '='";
          delta := Some (number st)
      | IDENT "beta" ->
          advance st;
          expect st EQUALS "expected '='";
          beta := Some (number st)
      | IDENT ("full" | "server" | "pfair" | "slots" | "bounded") ->
          set_supply (supply_expr st)
      | _ -> fail_at t "expected a platform attribute");
      expect st SEMI "expected ';'";
      body ()
    end
  in
  body ();
  let p_supply =
    match (!supply, !alpha) with
    | Some s, None -> s
    | None, Some alpha ->
        Ast.S_bound
          {
            alpha;
            delta = Option.value !delta ~default:Q.zero;
            beta = Option.value !beta ~default:Q.zero;
          }
    | Some _, Some _ ->
        raise
          (Parse_error
             ("platform " ^ p_name ^ ": give either alpha/delta/beta or a supply model"))
    | None, None ->
        raise (Parse_error ("platform " ^ p_name ^ ": no supply specified"))
  in
  Ast.I_platform { p_name; p_network; p_host = !host; p_supply }

let method_decl st =
  let m_name = ident st in
  expect st LPAREN "expected '('";
  expect st RPAREN "expected ')'";
  keyword st "mit";
  let m_mit = number st in
  expect st SEMI "expected ';'";
  { Ast.m_name; m_mit }

let action st =
  let t = peek st in
  match t.token with
  | IDENT "task" ->
      advance st;
      let t_name = ident st in
      let args = keyword_args st ~mandatory:"wcet" ~optional:[ "bcet"; "blocking" ] in
      let wcet = Option.get (args "wcet") in
      let prio = if accept_kw st "priority" then Some (integer st) else None in
      expect st SEMI "expected ';'";
      Some
        (Ast.A_task
           { t_name; wcet; bcet = args "bcet"; blocking = args "blocking"; prio })
  | IDENT "call" ->
      advance st;
      let m = ident st in
      expect st LPAREN "expected '('";
      expect st RPAREN "expected ')'";
      expect st SEMI "expected ';'";
      Some (Ast.A_call m)
  | _ -> None

let thread_decl st =
  let th_name = ident st in
  let t = peek st in
  let th_act =
    match t.token with
    | IDENT "periodic" ->
        advance st;
        let args =
          keyword_args st ~mandatory:"period" ~optional:[ "deadline"; "jitter" ]
        in
        Ast.Act_periodic
          {
            period = Option.get (args "period");
            deadline = args "deadline";
            jitter = args "jitter";
          }
    | IDENT "realizes" ->
        advance st;
        let meth = ident st in
        expect st LPAREN "expected '('";
        expect st RPAREN "expected ')'";
        let deadline = if accept_kw st "deadline" then Some (number st) else None in
        Ast.Act_realizes { meth; deadline }
    | _ -> fail_at t "expected 'periodic' or 'realizes'"
  in
  keyword st "priority";
  let th_prio = integer st in
  expect st LBRACE "expected '{'";
  let body = ref [] in
  let rec actions () =
    match action st with
    | Some a ->
        body := a :: !body;
        actions ()
    | None -> ()
  in
  actions ();
  expect st RBRACE "expected '}'";
  { Ast.th_name; th_act; th_prio; th_body = List.rev !body }

let component_decl st =
  let c_name = ident st in
  expect st LBRACE "expected '{'";
  let provided = ref [] and required = ref [] and threads = ref [] in
  let rec sections () =
    if accept st RBRACE then ()
    else begin
      let t = peek st in
      (match t.token with
      | IDENT "provided" ->
          advance st;
          expect st COLON "expected ':'";
          let rec methods () =
            match (peek st).token with
            | IDENT m
              when (not (List.mem m [ "provided"; "required"; "implementation" ]))
                   && (match st.tokens with
                      | _ :: { token = LPAREN; _ } :: _ -> true
                      | _ -> false) ->
                provided := method_decl st :: !provided;
                methods ()
            | _ -> ()
          in
          methods ()
      | IDENT "required" ->
          advance st;
          expect st COLON "expected ':'";
          let rec methods () =
            match (peek st).token with
            | IDENT m
              when (not (List.mem m [ "provided"; "required"; "implementation" ]))
                   && (match st.tokens with
                      | _ :: { token = LPAREN; _ } :: _ -> true
                      | _ -> false) ->
                required := method_decl st :: !required;
                methods ()
            | _ -> ()
          in
          methods ()
      | IDENT "implementation" ->
          advance st;
          expect st COLON "expected ':'";
          let rec impl () =
            match (peek st).token with
            | IDENT "scheduler" ->
                advance st;
                keyword st "fixed_priority";
                expect st SEMI "expected ';'";
                impl ()
            | IDENT "thread" ->
                advance st;
                threads := thread_decl st :: !threads;
                impl ()
            | _ -> ()
          in
          impl ()
      | _ -> fail_at t "expected 'provided', 'required' or 'implementation'");
      sections ()
    end
  in
  sections ();
  Ast.I_component
    {
      c_name;
      c_provided = List.rev !provided;
      c_required = List.rev !required;
      c_threads = List.rev !threads;
    }

let instance_decl st =
  let i_name = ident st in
  expect st COLON "expected ':'";
  let i_class = ident st in
  keyword st "on";
  let i_platform = ident st in
  expect st SEMI "expected ';'";
  Ast.I_instance { i_name; i_class; i_platform }

let binding_decl st =
  let b_caller = ident st in
  expect st DOT "expected '.'";
  let b_required = ident st in
  expect st ARROW "expected '->'";
  let b_callee = ident st in
  expect st DOT "expected '.'";
  let b_provided = ident st in
  let b_link =
    if accept_kw st "via" then begin
      let l_network = ident st in
      keyword st "priority";
      let l_prio = integer st in
      keyword st "request";
      let w, b = pair_args st ~first:"wcet" ~second:"bcet" in
      let l_request = (w, Option.value b ~default:w) in
      let l_reply =
        if accept_kw st "reply" then begin
          let w, b = pair_args st ~first:"wcet" ~second:"bcet" in
          Some (w, Option.value b ~default:w)
        end
        else None
      in
      Some { Ast.l_network; l_prio; l_request; l_reply }
    end
    else None
  in
  expect st SEMI "expected ';'";
  Ast.I_bind { b_caller; b_required; b_callee; b_provided; b_link }

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens } in
      let items = ref [] in
      try
        let rec go () =
          let t = peek st in
          match t.token with
          | EOF -> Ok (List.rev !items)
          | IDENT "platform" ->
              advance st;
              items := platform_decl st :: !items;
              go ()
          | IDENT "component" ->
              advance st;
              items := component_decl st :: !items;
              go ()
          | IDENT "instance" ->
              advance st;
              items := instance_decl st :: !items;
              go ()
          | IDENT "bind" ->
              advance st;
              items := binding_decl st :: !items;
              go ()
          | _ ->
              fail_at t "expected 'platform', 'component', 'instance' or 'bind'"
        in
        go ()
      with Parse_error msg -> Error msg)
