(** Recursive-descent parser for the [.hsc] language.

    Grammar sketch (keywords are plain identifiers):
    {v
    item      ::= platform | component | instance | bind
    platform  ::= "platform" ID ["network"] "{" pbody "}"
    pbody     ::= (assign | "server" "(" args ")" | "slots" "(" ... ")"
                   slot* | "pfair" "(" args ")" | "full") ";" ...
    component ::= "component" ID "{" section* "}"
    section   ::= "provided" ":" method*  |  "required" ":" method*
                | "implementation" ":" impl*
    method    ::= ID "(" ")" "mit" NUM ";"
    impl      ::= "scheduler" ID ";" | thread
    thread    ::= "thread" ID activation "priority" INT "{" action* "}"
    activation::= "periodic" "(" "period" "=" NUM ["," "deadline" "=" NUM] ")"
                | "realizes" ID "(" ")" ["deadline" NUM]
    action    ::= "task" ID "(" "wcet" "=" NUM ["," "bcet" "=" NUM] ")"
                  ["priority" INT] ";"
                | "call" ID "(" ")" ";"
    instance  ::= "instance" ID ":" ID "on" ID ";"
    bind      ::= "bind" ID "." ID "->" ID "." ID [link] ";"
    link      ::= "via" ID "priority" INT
                  "request" "(" "wcet" "=" NUM ["," "bcet" "=" NUM] ")"
                  ["reply" "(" "wcet" "=" NUM ["," "bcet" "=" NUM] ")"]
    v} *)

val parse : string -> (Ast.t, string) result
(** Errors carry the line/column of the offending token. *)
