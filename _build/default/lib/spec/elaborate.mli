(** Elaboration of a parsed [.hsc] description into the component model.

    Elaboration is purely structural (building classes, platforms,
    instances, bindings); semantic checking is left to
    {!Component.Assembly.validate}, which callers should run — or use
    {!Spec.load} which does both. *)

val assembly : Ast.t -> (Component.Assembly.t, string) result
(** Fails on structural errors the model constructors reject (duplicate
    names, non-positive parameters, …) with the constructor's message. *)
