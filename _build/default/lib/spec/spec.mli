(** The [.hsc] system-description language: parse, validate, print.

    The language is the concrete form of the paper's pseudo
    object-oriented component notation (Figures 1–2), extended with
    platform, instance and binding items.  See {!Parser} for the
    grammar. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Elaborate = Elaborate
module Printer = Printer

val load : string -> (Component.Assembly.t, string list) result
(** Parse, elaborate and validate a source string; all diagnostics are
    returned. *)

val load_file : string -> (Component.Assembly.t, string list) result
(** {!load} on the contents of a file; I/O errors become diagnostics. *)

val to_string : Component.Assembly.t -> string
(** Alias of {!Printer.to_string}. *)
