module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Elaborate = Elaborate
module Printer = Printer

let load src =
  match Parser.parse src with
  | Error e -> Error [ e ]
  | Ok ast -> (
      match Elaborate.assembly ast with
      | Error e -> Error [ e ]
      | Ok asm -> (
          match Component.Assembly.validate asm with
          | Ok () -> Ok asm
          | Error es -> Error es))

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> load src
  | exception Sys_error msg -> Error [ msg ]

let to_string = Printer.to_string
