(** Rendering a component assembly back to [.hsc] text.

    [Spec.load (Printer.to_string a)] reconstructs an assembly equivalent
    to [a] (the round-trip property checked by the test suite), so the
    printer doubles as a serialisation format for generated systems. *)

val to_string : Component.Assembly.t -> string

val pp : Format.formatter -> Component.Assembly.t -> unit
