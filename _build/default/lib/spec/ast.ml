(** Parse tree of the [.hsc] system-description language — the concrete
    form of the paper's pseudo object-oriented component notation
    (Figures 1 and 2), extended with platform, instance and binding
    declarations so a whole system fits in one file. *)

type number = Rational.t

type supply =
  | S_bound of { alpha : number; delta : number; beta : number }
  | S_server of { budget : number; period : number }
  | S_slots of { frame : number; slots : (number * number) list }
  | S_pfair of { weight : number }
  | S_full
  | S_nested of { inner : supply; outer : supply }
      (** [inner within outer]: a reservation inside a reservation *)

type platform_decl = {
  p_name : string;
  p_network : bool;
  p_host : string option;
  p_supply : supply;
}

type method_decl = { m_name : string; m_mit : number }

type action =
  | A_task of {
      t_name : string;
      wcet : number;
      bcet : number option;  (** defaults to the WCET *)
      blocking : number option;  (** defaults to zero *)
      prio : int option;  (** thread priority override *)
    }
  | A_call of string

type activation =
  | Act_periodic of {
      period : number;
      deadline : number option;
      jitter : number option;  (** defaults to zero *)
    }
  | Act_realizes of { meth : string; deadline : number option }

type thread_decl = {
  th_name : string;
  th_act : activation;
  th_prio : int;
  th_body : action list;
}

type component_decl = {
  c_name : string;
  c_provided : method_decl list;
  c_required : method_decl list;
  c_threads : thread_decl list;
}

type link_decl = {
  l_network : string;
  l_prio : int;
  l_request : number * number;
  l_reply : (number * number) option;
}

type binding_decl = {
  b_caller : string;
  b_required : string;
  b_callee : string;
  b_provided : string;
  b_link : link_decl option;
}

type instance_decl = { i_name : string; i_class : string; i_platform : string }

type item =
  | I_platform of platform_decl
  | I_component of component_decl
  | I_instance of instance_decl
  | I_bind of binding_decl

type t = item list
