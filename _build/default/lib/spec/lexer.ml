type token =
  | IDENT of string
  | NUMBER of Rational.t
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | EQUALS
  | ARROW
  | DOT
  | EOF

type located = { token : token; line : int; col : int }

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER q -> Printf.sprintf "number %s" (Rational.to_string q)
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | EQUALS -> "'='"
  | ARROW -> "'->'"
  | DOT -> "'.'"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let error msg =
    Error (Printf.sprintf "line %d, column %d: %s" !line !col msg)
  in
  let emit token = out := { token; line = !line; col = !col } :: !out in
  let rec go i =
    if i >= n then begin
      emit EOF;
      Ok (List.rev !out)
    end
    else
      let c = src.[i] in
      let advance k =
        for j = i to i + k - 1 do
          if src.[j] = '\n' then begin
            incr line;
            col := 1
          end
          else incr col
        done;
        go (i + k)
      in
      if c = '\n' || c = ' ' || c = '\t' || c = '\r' then advance 1
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        advance (eol i - i)
      end
      else if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        emit (IDENT (String.sub src i (j - i)));
        advance (j - i)
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1]) then begin
        (* integer, decimal or fraction *)
        let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
        let j0 = if c = '-' then i + 1 else i in
        let j = digits j0 in
        let j =
          if j < n && (src.[j] = '.' || src.[j] = '/') && j + 1 < n && is_digit src.[j + 1]
          then digits (j + 1)
          else j
        in
        let text = String.sub src i (j - i) in
        (match Rational.of_decimal_string text with
        | q ->
            emit (NUMBER q);
            advance (j - i)
        | exception Invalid_argument _ -> error ("bad number " ^ text))
      end
      else if c = '"' then begin
        let rec stop j =
          if j >= n then None
          else if src.[j] = '"' then Some j
          else if src.[j] = '\n' then None
          else stop (j + 1)
        in
        match stop (i + 1) with
        | None -> error "unterminated string"
        | Some j ->
            emit (STRING (String.sub src (i + 1) (j - i - 1)));
            advance (j - i + 1)
      end
      else if c = '-' && i + 1 < n && src.[i + 1] = '>' then begin
        emit ARROW;
        advance 2
      end
      else
        let simple t =
          emit t;
          advance 1
        in
        match c with
        | '{' -> simple LBRACE
        | '}' -> simple RBRACE
        | '(' -> simple LPAREN
        | ')' -> simple RPAREN
        | '[' -> simple LBRACKET
        | ']' -> simple RBRACKET
        | ':' -> simple COLON
        | ';' -> simple SEMI
        | ',' -> simple COMMA
        | '=' -> simple EQUALS
        | '.' -> simple DOT
        | _ -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0
