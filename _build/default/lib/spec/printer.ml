module Q = Rational
module LB = Platform.Linear_bound
module Resource = Platform.Resource
module M = Component.Method_sig
module Th = Component.Thread
module Comp = Component.Comp
module A = Component.Assembly

let rec pp_supply_expr ppf = function
  | Platform.Supply.Full -> Format.fprintf ppf "full"
  | Platform.Supply.Bounded_delay b ->
      Format.fprintf ppf "bounded(alpha = %a, delta = %a, beta = %a)" Q.pp
        b.LB.alpha Q.pp b.LB.delta Q.pp b.LB.beta
  | Platform.Supply.Periodic_server { budget; period } ->
      Format.fprintf ppf "server(budget = %a, period = %a)" Q.pp budget Q.pp
        period
  | Platform.Supply.Pfair { weight } ->
      Format.fprintf ppf "pfair(weight = %a)" Q.pp weight
  | Platform.Supply.Static_slots { frame; slots } ->
      Format.fprintf ppf "slots(frame = %a)" Q.pp frame;
      List.iter (fun (s, l) -> Format.fprintf ppf " [%a, %a]" Q.pp s Q.pp l) slots
  | Platform.Supply.Nested { inner; outer } ->
      Format.fprintf ppf "%a within %a" pp_supply_expr inner pp_supply_expr outer

let pp_supply ppf = function
  | Platform.Supply.Bounded_delay b ->
      Format.fprintf ppf "  alpha = %a;@,  delta = %a;@,  beta = %a;@," Q.pp
        b.LB.alpha Q.pp b.LB.delta Q.pp b.LB.beta
  | supply -> Format.fprintf ppf "  %a;@," pp_supply_expr supply

let pp_platform ppf (r : Resource.t) =
  Format.fprintf ppf "@[<v>platform %s%s {@,%a  host = %S;@,}@]@," r.Resource.name
    (match r.Resource.kind with Resource.Network -> " network" | Resource.Cpu -> "")
    pp_supply r.Resource.supply r.Resource.host

let pp_method ppf (m : M.t) =
  Format.fprintf ppf "    %s() mit %a;@," m.M.name Q.pp m.M.mit

let pp_action ppf = function
  | Th.Call { method_name } -> Format.fprintf ppf "      call %s();@," method_name
  | Th.Task { name; wcet; bcet; blocking; priority } ->
      Format.fprintf ppf "      task %s(wcet = %a, bcet = %a%s)%s;@," name Q.pp
        wcet Q.pp bcet
        (match blocking with
        | None -> ""
        | Some b -> Format.asprintf ", blocking = %a" Q.pp b)
        (match priority with
        | None -> ""
        | Some p -> Printf.sprintf " priority %d" p)

let pp_thread ppf (t : Th.t) =
  let activation ppf = function
    | Th.Periodic { period; deadline; jitter } ->
        Format.fprintf ppf "periodic(period = %a, deadline = %a%s)" Q.pp period
          Q.pp deadline
          (if Q.equal jitter Q.zero then ""
           else Format.asprintf ", jitter = %a" Q.pp jitter)
    | Th.Realizes { method_name; deadline } ->
        Format.fprintf ppf "realizes %s()%s" method_name
          (match deadline with
          | None -> ""
          | Some d -> Format.asprintf " deadline %a" Q.pp d)
  in
  Format.fprintf ppf "    thread %s %a priority %d {@,%a    }@," t.Th.name
    activation t.Th.activation t.Th.priority
    (fun ppf body -> List.iter (pp_action ppf) body)
    t.Th.body

let pp_component ppf (c : Comp.t) =
  Format.fprintf ppf "@[<v>component %s {@," c.Comp.name;
  if c.Comp.provided <> [] then begin
    Format.fprintf ppf "  provided:@,";
    List.iter (pp_method ppf) c.Comp.provided
  end;
  if c.Comp.required <> [] then begin
    Format.fprintf ppf "  required:@,";
    List.iter (pp_method ppf) c.Comp.required
  end;
  Format.fprintf ppf "  implementation:@,    scheduler fixed_priority;@,";
  List.iter (pp_thread ppf) c.Comp.threads;
  Format.fprintf ppf "}@]@,"

let pp_binding ppf (b : A.binding) =
  Format.fprintf ppf "bind %s.%s -> %s.%s" b.A.caller b.A.required b.A.callee
    b.A.provided;
  (match b.A.via with
  | None -> ()
  | Some l ->
      let w, bc = l.A.request in
      Format.fprintf ppf " via %s priority %d request(wcet = %a, bcet = %a)"
        l.A.network l.A.priority Q.pp w Q.pp bc;
      match l.A.reply with
      | None -> ()
      | Some (w, bc) ->
          Format.fprintf ppf " reply(wcet = %a, bcet = %a)" Q.pp w Q.pp bc);
  Format.fprintf ppf ";@,"

let pp ppf (a : A.t) =
  Format.fprintf ppf "@[<v>";
  List.iter (pp_platform ppf) a.A.resources;
  List.iter (pp_component ppf) a.A.classes;
  List.iter
    (fun (i : A.instance) ->
      let platform =
        match List.assoc_opt i.A.iname a.A.allocation with
        | Some p -> p
        | None -> "UNALLOCATED"
      in
      Format.fprintf ppf "instance %s : %s on %s;@," i.A.iname i.A.cls platform)
    a.A.instances;
  List.iter (pp_binding ppf) a.A.bindings;
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
