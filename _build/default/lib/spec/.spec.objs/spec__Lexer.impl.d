lib/spec/lexer.ml: List Printf Rational String
