lib/spec/printer.ml: Component Format List Platform Printf Rational
