lib/spec/parser.ml: Ast Hashtbl Lexer List Option Printf Rational String
