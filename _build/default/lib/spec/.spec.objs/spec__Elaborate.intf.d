lib/spec/elaborate.mli: Ast Component
