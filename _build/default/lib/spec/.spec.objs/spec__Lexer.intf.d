lib/spec/lexer.mli: Rational
