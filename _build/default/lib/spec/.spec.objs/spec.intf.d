lib/spec/spec.mli: Ast Component Elaborate Lexer Parser Printer
