lib/spec/elaborate.ml: Ast Component List Option Platform Rational
