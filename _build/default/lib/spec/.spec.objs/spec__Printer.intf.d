lib/spec/printer.mli: Component Format
