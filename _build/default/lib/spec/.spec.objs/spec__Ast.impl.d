lib/spec/ast.ml: Rational
