lib/spec/ast.mli: Rational
