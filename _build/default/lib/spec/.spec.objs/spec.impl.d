lib/spec/spec.ml: Ast Component Elaborate In_channel Lexer Parser Printer
